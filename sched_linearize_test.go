//go:build sched

package repro

// Deterministic schedule enumeration over the instrumented LLX/SCX stack
// (internal/sched) combined with the linearizability checker
// (internal/linearize): every interleaving of a bounded conflict window is
// replayed under the cooperative controller, the recorded history of each
// schedule is checked against the sequential specification, and the seeded
// dropped-freeze protocol mutation is proven to be caught.
//
// The windows run on EBST: it is the plainest instantiation of the tree
// update template (no rebalancing policy), so its point sequence is the
// template's own — insertion SCX freezing {p, l}, deletion SCX freezing
// {gp, p, l, s} and finalizing {p, l, s}, and the SCX-free vcell overwrite.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ebst"
	"repro/internal/linearize"
	"repro/internal/sched"
)

// pointSet builds an Options.Points filter admitting exactly the given
// instrumentation points.
func pointSet(ids ...sched.PointID) func(sched.PointID) bool {
	admit := make(map[sched.PointID]bool, len(ids))
	for _, id := range ids {
		admit[id] = true
	}
	return func(p sched.PointID) bool { return admit[p] }
}

// checkHistory runs the checker over the recorded history and converts a
// violation into an error for Explore.
func checkHistory(rec *linearize.Recorder[int64, int64]) error {
	if res := linearize.Check(rec.History()); !res.OK() {
		return fmt.Errorf("%s", res.Report())
	}
	return nil
}

// TestConflictWindowEnumerationLinearizable exhaustively enumerates bounded
// insert/delete/overwrite conflict windows and requires a strictly
// linearizable history under every schedule. The windows use adjacent keys;
// the sharper overwrite-vs-delete-of-the-same-key window (once a documented
// anomaly, closed by the publish bracket) is enumerated separately below.
// Any violation here is a real protocol bug: a lost update, a lost subtree,
// or a torn multi-record read.
func TestConflictWindowEnumerationLinearizable(t *testing.T) {
	cases := []struct {
		name   string
		points []sched.PointID
		// minSchedules is the interleaving count with no retries (the
		// multinomial of the workers' segment counts); contention retries
		// only add schedules.
		minSchedules int
		workers      func(rec *linearize.Recorder[int64, int64], c *sched.Controller)
	}{
		{
			// Fresh insert vs. deletion of an adjacent key: the two SCXs
			// contend on the shared parent and leaf records.
			name:         "insert-vs-delete",
			points:       []sched.PointID{sched.PointSCXFreeze, sched.PointSCXUpdate},
			minSchedules: 210, // segments (6,4): C(10,4)
			workers: func(rec *linearize.Recorder[int64, int64], c *sched.Controller) {
				w0, w1 := rec.Proc(), rec.Proc()
				c.Go("delete-10", func() { w0.Delete(10) })
				c.Go("insert-15", func() { w1.Insert(15, 5) })
			},
		},
		{
			// In-place overwrite vs. deletion of an adjacent key: the
			// deletion's sibling copy aliases the overwritten leaf's value
			// cell, so the publish must stay visible through the copy.
			name: "overwrite-vs-adjacent-delete",
			points: []sched.PointID{
				sched.PointSCXFreeze, sched.PointSCXUpdate,
				sched.PointVCellPublish, sched.PointVCellRecheck,
			},
			minSchedules: 84, // segments (6,3): C(9,3)
			workers: func(rec *linearize.Recorder[int64, int64], c *sched.Controller) {
				w0, w1 := rec.Proc(), rec.Proc()
				c.Go("overwrite-20", func() { w0.Insert(20, 99) })
				c.Go("delete-10", func() { w1.Delete(10) })
			},
		},
		{
			// Three-way window at coarser points: a fresh insert, a delete
			// whose sibling copy aliases the hot leaf, and an overwrite of
			// that leaf — the delete's copy races the overwrite's publish
			// bracket. PointVCellRecheck must be admitted: it is the only
			// point a FAILED publish attempt crosses (the bracket checks the
			// mark before swapping), so without it an overwrite retrying
			// against a parked mid-SCX delete never yields to the controller.
			name: "insert-delete-overwrite",
			points: []sched.PointID{
				sched.PointSCXUpdate, sched.PointVCellPublish, sched.PointVCellRecheck,
			},
			minSchedules: 210, // segments (2,2,3): 7!/(2!2!3!)
			workers: func(rec *linearize.Recorder[int64, int64], c *sched.Controller) {
				w0, w1, w2 := rec.Proc(), rec.Proc(), rec.Proc()
				c.Go("insert-15", func() { w0.Insert(15, 5) })
				c.Go("delete-30", func() { w1.Delete(30) })
				c.Go("overwrite-20", func() { w2.Insert(20, 99) })
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const cap = 50000
			schedules, violations := sched.Explore(sched.Options{
				Points:       pointSet(tc.points...),
				MaxSchedules: cap,
			}, func(c *sched.Controller) error {
				rec := linearize.NewRecorder[int64, int64](ebst.NewOrdered[int64, int64]())
				setup := rec.Proc()
				setup.Insert(10, -10)
				setup.Insert(20, -20)
				setup.Insert(30, -30)
				tc.workers(rec, c)
				if err := c.Run(); err != nil {
					return err
				}
				post := rec.Proc()
				for _, k := range []int64{10, 15, 20, 30} {
					post.Get(k)
				}
				return checkHistory(rec)
			})
			if len(violations) > 0 {
				t.Fatalf("%d of %d schedules not linearizable; first:\nschedule %v\n%v",
					len(violations), schedules, violations[0].Schedule, violations[0].Err)
			}
			if schedules >= cap {
				t.Fatalf("enumeration hit the %d-schedule cap: not exhaustive", cap)
			}
			if schedules < tc.minSchedules {
				t.Fatalf("explored %d schedules, want at least %d (the retry-free interleaving count)",
					schedules, tc.minSchedules)
			}
			t.Logf("%d schedules, all linearizable", schedules)
		})
	}
}

// TestOverwriteDeleteWindowClosed enumerates the conflict that was, until
// the publish-bracket protocol (see internal/vcell and the overwrite
// protocol in internal/lbst), the one documented non-linearizable window in
// the stack: an in-place overwrite racing a deletion of the same key. The
// old publish-then-recheck protocol let an ambiguous publisher re-execute a
// publish the delete had already consumed — a double effect this very
// enumeration (and the chaos churn suite) exhibited. With the bracket in
// place every schedule must now be strictly linearizable, and the concrete
// response guarantees hold: the delete returns a published value, the
// insert either overwrites the old value or re-executes as a fresh insert
// after the delete, and no schedule shows both the delete and the insert
// claiming the same displaced value.
func TestOverwriteDeleteWindowClosed(t *testing.T) {
	const hot = int64(20)
	const cap = 50000
	schedules, violations := sched.Explore(sched.Options{
		Points: pointSet(
			sched.PointSCXFreeze, sched.PointSCXUpdate, sched.PointSCXCommit,
			sched.PointVCellPublish, sched.PointVCellRecheck,
		),
		MaxSchedules: cap,
	}, func(c *sched.Controller) error {
		rec := linearize.NewRecorder[int64, int64](ebst.NewOrdered[int64, int64]())
		setup := rec.Proc()
		setup.Insert(10, -10)
		setup.Insert(hot, -20)
		setup.Insert(30, -30)

		w0, w1 := rec.Proc(), rec.Proc()
		var insOut, delOut int64
		var insOK, delOK bool
		c.Go("overwrite-20", func() { insOut, insOK = w0.Insert(hot, 42) })
		c.Go("delete-20", func() { delOut, delOK = w1.Delete(hot) })
		if err := c.Run(); err != nil {
			return err
		}
		post := rec.Proc()
		gv, gok := post.Get(hot)

		// The concrete response guarantees, checked in every schedule.
		if !delOK || (delOut != -20 && delOut != 42) {
			return fmt.Errorf("delete returned (%d, %t): not a published value", delOut, delOK)
		}
		switch {
		case insOK && insOut == -20: // overwrite took effect before the delete
		case !insOK && insOut == 0: // re-executed as a fresh insert after the delete
		default:
			return fmt.Errorf("insert returned (%d, %t): neither overwrite nor re-execution", insOut, insOK)
		}
		if !insOK && (gv != 42 || !gok) {
			return fmt.Errorf("insert re-executed after the delete but Get = (%d, %t), want (42, true)", gv, gok)
		}
		if insOK && delOut == -20 {
			// A successful publish is drained by the delete before it loads
			// the displaced value, so the delete must have returned 42.
			return fmt.Errorf("insert claims overwrite of -20 but delete also returned -20")
		}

		// Strict linearizability in every schedule: the bracket makes a
		// failed publish effect-free, so the double-effect anomaly is gone.
		return checkHistory(rec)
	})
	if len(violations) > 0 {
		t.Fatalf("%d of %d schedules not linearizable; first:\nschedule %v\n%v",
			len(violations), schedules, violations[0].Schedule, violations[0].Err)
	}
	if schedules >= cap {
		t.Fatalf("enumeration hit the %d-schedule cap: not exhaustive", cap)
	}
	t.Logf("%d schedules, all linearizable", schedules)
}

// TestDroppedFreezeMutationCaught is the SCX half of the seeded-mutation
// self-tests: arming sched.DropFreeze makes every SCX skip the freeze of
// V[0] — for the deletion template the grandparent, exactly the record
// whose freeze makes the child-pointer swing atomic with the LLX snapshot.
//
// The window pairs two deletions whose V-sets overlap ONLY at a record each
// treats as its skipped slot's protectee: in the tree built by inserting
// 40, 10, 20, 30 the deletion of 20 has V = {I20, I30, leaf20, leaf30} and
// the deletion of 40 has V = {entry, I40, I20, leaf40} with I20 as its
// sibling — so with the grandparent freeze dropped, delete(20) never
// detects that delete(40) finalized I20 and promoted a copy of it, and
// commits its unlink into the dead original. The live copy still reaches
// leaf20: the acknowledged delete is lost, and the checker reports key 20
// as non-linearizable. With the knob off the same enumeration must be
// violation-free (the healthy freeze on the shared records forces the loser
// to abort and retry).
func TestDroppedFreezeMutationCaught(t *testing.T) {
	body := func(c *sched.Controller) error {
		rec := linearize.NewRecorder[int64, int64](ebst.NewOrdered[int64, int64]())
		setup := rec.Proc()
		for _, k := range []int64{40, 10, 20, 30} { // order fixes the shape
			setup.Insert(k, -k)
		}
		d1, d3 := rec.Proc(), rec.Proc()
		c.Go("delete-20", func() { d1.Delete(20) })
		c.Go("delete-40", func() { d3.Delete(40) })
		if err := c.Run(); err != nil {
			return err
		}
		post := rec.Proc()
		for _, k := range []int64{10, 20, 30, 40} {
			post.Get(k)
		}
		return checkHistory(rec)
	}
	points := pointSet(sched.PointSCXFreeze)

	t.Run("healthy-protocol", func(t *testing.T) {
		const cap = 20000
		schedules, violations := sched.Explore(sched.Options{
			Points:       points,
			MaxSchedules: cap,
		}, body)
		if len(violations) > 0 {
			t.Fatalf("healthy protocol produced %d violations in %d schedules; first:\n%v",
				len(violations), schedules, violations[0].Err)
		}
		if schedules >= cap {
			t.Fatalf("enumeration hit the %d-schedule cap: not exhaustive", cap)
		}
		t.Logf("%d schedules, all linearizable", schedules)
	})

	t.Run("mutated-protocol", func(t *testing.T) {
		sched.SetDropFreeze(true)
		defer sched.SetDropFreeze(false)
		schedules, violations := sched.Explore(sched.Options{
			Points:          points,
			MaxSchedules:    20000,
			StopOnViolation: true,
		}, body)
		if len(violations) == 0 {
			t.Fatalf("dropped-freeze mutation not caught in %d schedules: the checker has no teeth", schedules)
		}
		msg := violations[0].Err.Error()
		if !strings.Contains(msg, "linearizability violation") || !strings.Contains(msg, "key 20") {
			t.Fatalf("violation is not the lost delete of key 20:\n%s", msg)
		}
		t.Logf("mutation caught after %d schedules:\n%s", schedules, msg)
	})
}
