//go:build sched

package repro

// Deterministic schedule enumeration for the snapshot capture protocol
// (internal/lbst/snapshot.go): every interleaving of snapshot-publish
// (PointSnapPublish), the SCX commit sequence (freeze/update/commit) and the
// version stamp that orders them (PointVerStamp) is replayed under the
// cooperative controller, and every schedule must yield snapshots that are
// consistent cuts — each equal to one of the states the writer's sequential
// history passes through, frozen under later mutation, and monotone between
// two captures by the same goroutine.
//
// These enumerations are what forced the capture protocol into its current
// shape: with the version read BEFORE the publish-window drain and the
// stamp→install window bracketed by the commit hooks, every interleaving
// below is a clean cut. The first version of the protocol (drain first,
// read gver second, no stamp bracket) failed TestSnapshotCutEnumeration:
// an SCX could stamp its node at or below the captured version yet install
// it after the capture's first read, so the "frozen" view changed answers.
// The capture's drain runs under sched.WaitZero, so a schedule that parks a
// writer inside its fastWriters bracket simply makes the capture
// wait-blocked until the controller has run the writer past the bracket —
// which is also what lets the fast-path value publish (PointVCellRecheck)
// be enumerated directly (see TestSnapshotFastPathPublishEnumeration).

import (
	"fmt"
	"testing"

	"repro/internal/dict"
	"repro/internal/ebst"
	"repro/internal/epoch"
	"repro/internal/sched"
)

// snapObs is one full read of a snapshot view over the four keys the window
// touches; comparable so frozenness is one struct equality.
type snapObs struct {
	val [4]int64
	ok  [4]bool
}

func observeSnap(v dict.SnapshotView[int64, int64]) snapObs {
	var o snapObs
	for i, k := range [...]int64{10, 15, 20, 30} {
		o.val[i], o.ok[i] = v.Get(k)
	}
	return o
}

// TestSnapshotCutEnumeration runs one writer through insert(15), delete(10),
// overwrite(20) — three distinguishable state transitions — against a
// goroutine that captures two snapshots back to back, and enumerates every
// interleaving at snapshot-publish / version-stamp / SCX granularity. In
// every schedule each capture must equal one of the four sequential states
// S0..S3 (anything else is a torn cut), must answer identically after the
// window quiesces (frozen), and the second capture's cut index and version
// must not precede the first's (monotone capture).
func TestSnapshotCutEnumeration(t *testing.T) {
	if !epoch.Enabled {
		t.Skip("snapshots degrade to live views without epoch reclamation (noepoch build)")
	}
	// The sequential states of the writer's history over (10, 15, 20, 30).
	states := [4]snapObs{
		{val: [4]int64{-10, 0, -20, -30}, ok: [4]bool{true, false, true, true}},  // S0
		{val: [4]int64{-10, 5, -20, -30}, ok: [4]bool{true, true, true, true}},   // S1: +15
		{val: [4]int64{0, 5, -20, -30}, ok: [4]bool{false, true, true, true}},    // S2: -10
		{val: [4]int64{0, 5, 99, -30}, ok: [4]bool{false, true, true, true}},     // S3: 20→99
	}
	cutIndex := func(o snapObs) int {
		for i, s := range states {
			if o == s {
				return i
			}
		}
		return -1
	}

	const cap = 50000
	schedules, violations := sched.Explore(sched.Options{
		Points: pointSet(
			sched.PointSCXFreeze, sched.PointSCXUpdate, sched.PointSCXCommit,
			sched.PointVerStamp, sched.PointSnapPublish,
		),
		MaxSchedules: cap,
	}, func(c *sched.Controller) error {
		tree := ebst.NewOrdered[int64, int64]()
		tree.Insert(10, -10)
		tree.Insert(20, -20)
		tree.Insert(30, -30)

		var snap1, snap2 dict.SnapshotView[int64, int64]
		var first1, first2 snapObs
		c.Go("writer", func() {
			tree.Insert(15, 5)
			tree.Delete(10)
			tree.Insert(20, 99)
		})
		c.Go("snapshot", func() {
			snap1 = tree.Snapshot()
			first1 = observeSnap(snap1)
			snap2 = tree.Snapshot()
			first2 = observeSnap(snap2)
		})
		if err := c.Run(); err != nil {
			return err
		}
		defer snap1.Release()
		defer snap2.Release()

		// Each capture is a consistent cut of the writer's history.
		i1, i2 := cutIndex(first1), cutIndex(first2)
		if i1 < 0 {
			return fmt.Errorf("first snapshot observed a torn cut: %+v", first1)
		}
		if i2 < 0 {
			return fmt.Errorf("second snapshot observed a torn cut: %+v", first2)
		}
		// Captures by one goroutine are monotone, in cut and in version.
		if i2 < i1 {
			return fmt.Errorf("later snapshot went backwards: cut S%d then S%d", i1, i2)
		}
		if snap2.Version() < snap1.Version() {
			return fmt.Errorf("later snapshot version %d < earlier %d", snap2.Version(), snap1.Version())
		}
		// Frozen: with the window fully quiesced (live state is S3), both
		// views still answer exactly their capture.
		if again := observeSnap(snap1); again != first1 {
			return fmt.Errorf("first snapshot moved after quiescence: %+v then %+v", first1, again)
		}
		if again := observeSnap(snap2); again != first2 {
			return fmt.Errorf("second snapshot moved after quiescence: %+v then %+v", first2, again)
		}
		if !snap1.Consistent() || !snap2.Consistent() {
			return fmt.Errorf("capture did not report a consistent view")
		}
		return nil
	})
	if len(violations) > 0 {
		t.Fatalf("%d of %d schedules broke the snapshot contract; first:\nschedule %v\n%v",
			len(violations), schedules, violations[0].Schedule, violations[0].Err)
	}
	if schedules >= cap {
		t.Fatalf("enumeration hit the %d-schedule cap: not exhaustive", cap)
	}
	// The writer contributes at least 13 admitted points (insert 5, delete 7,
	// overwrite ≥ 1) and the capture goroutine 2, so a complete enumeration
	// cannot be smaller than the placements of 2 capture points among 14
	// writer segments: C(15, 2) = 105.
	if schedules < 105 {
		t.Fatalf("explored %d schedules, want at least 105 (the retry-free interleaving count)", schedules)
	}
	t.Logf("%d schedules, every capture a frozen consistent cut", schedules)
}

// TestSnapshotOverwritePublishEnumeration closes the remaining seam: the
// version stamp of the leaf-replacement SCX that an overwrite degrades to
// while a snapshot is live, against the capture's own publish. A snapshot
// captured before the replacement's update CAS must pin the old value of the
// hot key forever; one captured after must pin the new one; no schedule may
// show the capture tearing between them or observing an unstamped node.
func TestSnapshotOverwritePublishEnumeration(t *testing.T) {
	if !epoch.Enabled {
		t.Skip("snapshots degrade to live views without epoch reclamation (noepoch build)")
	}
	const cap = 50000
	schedules, violations := sched.Explore(sched.Options{
		Points: pointSet(
			sched.PointSCXUpdate, sched.PointSCXCommit,
			sched.PointVerStamp, sched.PointSnapPublish,
		),
		MaxSchedules: cap,
	}, func(c *sched.Controller) error {
		tree := ebst.NewOrdered[int64, int64]()
		tree.Insert(10, -10)
		tree.Insert(20, -20)
		tree.Insert(30, -30)

		// A pre-existing snapshot keeps snapLive nonzero for the whole window,
		// so the writer's overwrite takes the leaf-replacement SCX path (the
		// fast path's spin-bracket never opens — see the package comment).
		hold := tree.Snapshot()
		defer hold.Release()

		var snap dict.SnapshotView[int64, int64]
		var first snapObs
		c.Go("overwrite", func() { tree.Insert(20, 99) })
		c.Go("snapshot", func() {
			snap = tree.Snapshot()
			first = observeSnap(snap)
		})
		if err := c.Run(); err != nil {
			return err
		}
		defer snap.Release()

		if v, ok := first.val[2], first.ok[2]; !ok || (v != -20 && v != 99) {
			return fmt.Errorf("capture saw hot key as (%d, %t): neither the old nor the new published value", v, ok)
		}
		if again := observeSnap(snap); again != first {
			return fmt.Errorf("snapshot moved after the overwrite quiesced: %+v then %+v", first, again)
		}
		if v, _ := tree.Get(20); v != 99 {
			return fmt.Errorf("live tree lost the overwrite: Get(20) = %d", v)
		}
		return nil
	})
	if len(violations) > 0 {
		t.Fatalf("%d of %d schedules broke the overwrite/capture ordering; first:\nschedule %v\n%v",
			len(violations), schedules, violations[0].Schedule, violations[0].Err)
	}
	if schedules >= cap {
		t.Fatalf("enumeration hit the %d-schedule cap: not exhaustive", cap)
	}
	t.Logf("%d schedules, capture pins exactly one published value", schedules)
}

// TestSnapshotFastPathPublishEnumeration enumerates the seam the previous
// test holds shut: the in-place value publish of the overwrite fast path
// (bracketed by fastWriters) against the capture's snapLive rise, version
// read and drain. Whichever way the race lands, the overwrite must either
// complete its Swap before the capture's drain observes zero — in which case
// the snapshot pins the NEW value — or fall to the leaf-replacement SCX,
// whose stamped leaf resolves to the old or new value by tick; a schedule
// where the capture first answers the old value and later the new one would
// mean a Swap landed inside a supposedly frozen view.
func TestSnapshotFastPathPublishEnumeration(t *testing.T) {
	if !epoch.Enabled {
		t.Skip("snapshots degrade to live views without epoch reclamation (noepoch build)")
	}
	const cap = 50000
	schedules, violations := sched.Explore(sched.Options{
		Points: pointSet(
			sched.PointVCellRecheck, sched.PointSnapPublish,
			sched.PointSCXUpdate, sched.PointVerStamp,
		),
		MaxSchedules: cap,
	}, func(c *sched.Controller) error {
		tree := ebst.NewOrdered[int64, int64]()
		tree.Insert(10, -10)
		tree.Insert(20, -20)
		tree.Insert(30, -30)

		var snap dict.SnapshotView[int64, int64]
		var first snapObs
		c.Go("overwrite", func() { tree.Insert(20, 99) })
		c.Go("snapshot", func() {
			snap = tree.Snapshot()
			first = observeSnap(snap)
		})
		if err := c.Run(); err != nil {
			return err
		}
		defer snap.Release()

		if v, ok := first.val[2], first.ok[2]; !ok || (v != -20 && v != 99) {
			return fmt.Errorf("capture saw hot key as (%d, %t): neither the old nor the new published value", v, ok)
		}
		if again := observeSnap(snap); again != first {
			return fmt.Errorf("snapshot moved after the overwrite quiesced: %+v then %+v", first, again)
		}
		if v, _ := tree.Get(20); v != 99 {
			return fmt.Errorf("live tree lost the overwrite: Get(20) = %d", v)
		}
		return nil
	})
	if len(violations) > 0 {
		t.Fatalf("%d of %d schedules broke the fast-path publish/capture ordering; first:\nschedule %v\n%v",
			len(violations), schedules, violations[0].Schedule, violations[0].Err)
	}
	if schedules >= cap {
		t.Fatalf("enumeration hit the %d-schedule cap: not exhaustive", cap)
	}
	t.Logf("%d schedules, fast-path publish and capture never tear", schedules)
}
